// Package kshape implements the k-Shape time-series clustering algorithm of
// Paparrizos & Gravano (SIGMOD 2015), together with its shape-based distance
// (SBD) and shape-extraction centroid method, and the full set of baseline
// algorithms the paper evaluates against (k-means variants, k-DBA, KSC,
// PAM/k-medoids, hierarchical and spectral clustering with ED/cDTW/SBD).
//
// Quick start:
//
//	res, err := kshape.Cluster(data, 3, kshape.Options{Seed: 42})
//	// res.Labels[i] is the cluster of data[i]; res.Centroids are the
//	// extracted shapes.
//
// Input series must be equal-length. Unless Options.SkipNormalization is
// set, every series is z-normalized first, which provides the scaling and
// translation invariances of the method; SBD itself provides shift
// invariance.
package kshape

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"

	"kshape/internal/avg"
	"kshape/internal/cluster"
	"kshape/internal/dist"
	"kshape/internal/eval"
	"kshape/internal/obs"
	"kshape/internal/par"
	"kshape/internal/ts"
)

// IterationStats describes one refinement iteration of an iterative
// clustering method: objective value, label churn, per-phase wall time, and
// cluster occupancy. See Options.OnIteration.
type IterationStats = obs.IterationStats

// RunTrace summarizes an instrumented clustering run: the per-iteration
// trajectory plus kernel counters and total wall time. See
// Options.CollectTrace and Result.Trace.
type RunTrace = obs.RunTrace

// KernelCounters is a snapshot of the low-level operation counters (FFT
// transforms, distance evaluations, eigensolver iterations, reseeds)
// reported inside RunTrace.
type KernelCounters = obs.Counters

// Result reports a clustering.
type Result struct {
	// Labels assigns each input series to a cluster in [0, K).
	Labels []int
	// Centroids holds one representative shape per cluster (z-normalized
	// for k-Shape; method-specific for baselines, and nil for spectral
	// clustering, whose embedded centroids are not time series).
	Centroids [][]float64
	// Iterations is the number of refinement iterations executed.
	Iterations int
	// Converged is true when the method stopped on a fixed point rather
	// than the iteration cap.
	Converged bool
	// Inertia is the within-cluster sum of squared distances at termination
	// (Equation 1 of the paper) — comparable across runs of the same
	// method and k, used by ClusterRestarts to pick the best restart.
	Inertia float64
	// Trace holds the run's per-iteration trajectory and kernel counters.
	// Nil unless Options.CollectTrace was set.
	Trace *RunTrace
}

// Options configures Cluster and New.
type Options struct {
	// MaxIterations caps the refinement loop (default 100, as in the
	// paper).
	MaxIterations int
	// Seed drives the random initial assignment. Runs with the same data,
	// k, and seed are reproducible.
	Seed int64
	// SkipNormalization disables the automatic z-normalization. Set it only
	// if the input is already z-normalized.
	SkipNormalization bool
	// Method selects the clustering algorithm by its paper name
	// ("k-Shape", "k-AVG+ED", "k-DBA", "KSC", "PAM+SBD", "H-C+SBD",
	// "S+SBD", ...). Empty means "k-Shape". See Methods for the full list.
	Method string
	// OnIteration, if non-nil, is invoked synchronously after every
	// refinement iteration of an iterative method (k-Shape and the
	// k-means family). Methods without a refinement loop (hierarchical,
	// PAM, spectral) never invoke it.
	OnIteration func(IterationStats)
	// CollectTrace records the per-iteration trajectory, kernel operation
	// counters, and total wall time of the run into Result.Trace. Counter
	// accumulation is process-global, so concurrent clustering runs in
	// other goroutines contribute to this run's counter deltas.
	CollectTrace bool
	// Workers bounds the clustering's parallelism: 0 (the default) means
	// runtime.NumCPU(), 1 means fully serial, and any other positive
	// value caps the number of concurrent workers. Every method computes
	// through the deterministic internal/par substrate, so labels,
	// centroids, iteration traces, and kernel counters are bit-for-bit
	// identical for every Workers value under a fixed Seed.
	Workers int
	// Logger, if non-nil, receives structured log records from the run:
	// per-iteration statistics at debug level for iterative methods.
	// Methods without a refinement loop emit nothing.
	Logger *slog.Logger
}

// Cluster partitions equal-length time series into k clusters with k-Shape
// (or the algorithm named in opts.Method).
func Cluster(data [][]float64, k int, opts Options) (*Result, error) {
	if len(data) == 0 {
		return nil, errors.New("kshape: no input series")
	}
	name := opts.Method
	if name == "" {
		name = "k-Shape"
	}
	c, ok := methodRegistry(opts.Workers)[name]
	if !ok {
		return nil, fmt.Errorf("kshape: unknown method %q (see kshape.Methods)", name)
	}
	m := len(data[0])
	for i, x := range data {
		if len(x) != m {
			return nil, fmt.Errorf("kshape: series %d has length %d, want %d (all series must be equal-length)", i, len(x), m)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("kshape: series %d has a non-finite value at position %d", i, j)
			}
		}
	}
	prepared := data
	if !opts.SkipNormalization {
		prepared = make([][]float64, len(data))
		for i, x := range data {
			prepared[i] = ts.ZNormalize(x)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Every method — k-Shape included — dispatches through the registry
	// and cluster.Run, so engine options and instrumentation hooks apply
	// uniformly; iteration-level controls are inert for methods without a
	// refinement loop.
	onIter := opts.OnIteration
	var trace *RunTrace
	var countersBefore obs.Counters
	var wasCounting bool
	var sw obs.Stopwatch
	if opts.CollectTrace {
		trace = &RunTrace{Method: name}
		userIter := onIter
		onIter = func(st IterationStats) {
			trace.Iterations = append(trace.Iterations, st)
			if userIter != nil {
				userIter(st)
			}
		}
		wasCounting = obs.SetEnabled(true)
		countersBefore = obs.ReadCounters()
		sw = obs.NewStopwatch()
	}
	res, err := cluster.Run(c, prepared, k, rng, cluster.Opts{
		MaxIterations: opts.MaxIterations,
		OnIteration:   onIter,
		Workers:       opts.Workers,
		Logger:        opts.Logger,
	})
	if opts.CollectTrace {
		trace.TotalNS = sw.ElapsedNS()
		trace.Counters = obs.ReadCounters().Sub(countersBefore)
		obs.SetEnabled(wasCounting)
	}
	if err != nil {
		return nil, err
	}
	if trace != nil {
		trace.Converged = res.Converged
	}
	return &Result{
		Labels:     res.Labels,
		Centroids:  res.Centroids,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Inertia:    res.Inertia,
		Trace:      trace,
	}, nil
}

// ClusterRestarts runs Cluster `restarts` times with seeds derived from
// opts.Seed and returns the run minimizing the within-cluster objective
// (Result.Inertia) — the standard way to smooth over bad random
// initializations of Lloyd-type methods.
func ClusterRestarts(data [][]float64, k, restarts int, opts Options) (*Result, error) {
	if restarts < 1 {
		restarts = 1
	}
	var best *Result
	for r := 0; r < restarts; r++ {
		o := opts
		o.Seed = opts.Seed + int64(r)*1_000_003
		res, err := Cluster(data, k, o)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// Methods lists the clustering algorithms available through
// Options.Method, in the order of the paper's tables.
func Methods() []string {
	return []string{
		"k-Shape",
		"k-AVG+ED", "k-AVG+SBD", "k-AVG+DTW", "k-DBA", "KSC", "k-Shape+DTW",
		"PAM+ED", "PAM+cDTW5", "PAM+SBD",
		"H-S+ED", "H-A+ED", "H-C+ED",
		"H-S+cDTW5", "H-A+cDTW5", "H-C+cDTW5",
		"H-S+SBD", "H-A+SBD", "H-C+SBD",
		"S+ED", "S+cDTW5", "S+SBD",
		"Features+k-means",
	}
}

func methodRegistry(workers int) map[string]cluster.Clusterer {
	cdtw5 := dist.NewCDTWFrac("cDTW5", 0.05)
	pam := func(m dist.Measure) cluster.Clusterer {
		p := cluster.NewPAM(m)
		p.Workers = workers
		return p
	}
	spectral := func(m dist.Measure) cluster.Clusterer {
		s := cluster.NewSpectral(m)
		s.Workers = workers
		return s
	}
	reg := map[string]cluster.Clusterer{
		"k-Shape":     cluster.NewKShape(),
		"k-AVG+ED":    cluster.NewKAvgED(),
		"k-AVG+SBD":   cluster.NewKAvgSBD(),
		"k-AVG+DTW":   cluster.NewKAvgDTW(),
		"k-DBA":       cluster.NewKDBA(),
		"KSC":         cluster.NewKSC(),
		"k-Shape+DTW": cluster.NewKShapeDTW(),
		"PAM+ED":      pam(dist.EDMeasure{}),
		"PAM+cDTW5":   pam(cdtw5),
		"PAM+SBD":     pam(dist.SBDMeasure{}),
		"S+ED":        spectral(dist.EDMeasure{}),
		"S+cDTW5":     spectral(cdtw5),
		"S+SBD":       spectral(dist.SBDMeasure{}),

		// The statistical/feature-based contrast of Section 6.
		"Features+k-means": cluster.NewFeatureBased(),
	}
	for _, link := range []cluster.Linkage{cluster.SingleLinkage, cluster.AverageLinkage, cluster.CompleteLinkage} {
		for _, m := range []dist.Measure{dist.EDMeasure{}, cdtw5, dist.SBDMeasure{}} {
			c := cluster.NewHierarchical(link, m)
			reg[c.Name()] = c
		}
	}
	return reg
}

// SBD computes the shape-based distance between two equal-length series and
// returns y aligned (shifted) toward x. The distance lies in [0, 2]; 0
// means identical shape up to scale and shift (inputs should be
// z-normalized for the scale invariance to hold).
func SBD(x, y []float64) (distance float64, yAligned []float64) {
	return dist.SBD(x, y)
}

// SBDDistance is SBD without the aligned sequence.
func SBDDistance(x, y []float64) float64 { return dist.SBDDist(x, y) }

// ShapeExtract computes the shape-based centroid of a set of equal-length
// series: the dominant eigenvector of the centered Gram matrix of the
// SBD-aligned members (Algorithm 2 of the paper). ref is the alignment
// reference (pass nil to skip alignment, e.g. for pre-aligned data).
func ShapeExtract(members [][]float64, ref []float64) []float64 {
	return avg.ShapeExtraction(members, ref)
}

// ZNormalize returns (x - mean) / std, the preprocessing k-Shape expects.
func ZNormalize(x []float64) []float64 { return ts.ZNormalize(x) }

// PAA reduces a series to the given number of segments by Piecewise
// Aggregate Approximation (each equal-width window replaced by its mean) —
// the dimensionality reduction Section 3.3 of the paper suggests when the
// series length dominates the clustering cost. Cluster the reduced rows
// exactly like raw ones.
func PAA(x []float64, segments int) []float64 { return ts.PAA(x, segments) }

// EstimateKRestarts is the number of random restarts EstimateK tries per
// candidate k, keeping the silhouette-best run. Restarts smooth over bad
// local optima of individual clusterings, which would otherwise make the
// criterion prefer a wrong k.
const EstimateKRestarts = 3

// EstimateK selects the number of clusters without labels, per the paper's
// footnote 2: it sweeps k in [2, kMax], runs k-Shape for each (with
// EstimateKRestarts restarts), and returns the k maximizing the mean
// silhouette coefficient under SBD (an intrinsic criterion), along with
// that silhouette value. The SBD dissimilarity matrix is computed once, so
// the sweep costs one O(n²) matrix plus the clusterings.
func EstimateK(data [][]float64, kMax int, opts Options) (k int, silhouette float64, err error) {
	if len(data) < 3 {
		return 0, 0, errors.New("kshape: EstimateK needs at least 3 series")
	}
	if kMax < 2 {
		return 0, 0, errors.New("kshape: EstimateK needs kMax >= 2")
	}
	if kMax > len(data)-1 {
		kMax = len(data) - 1
	}
	prepared := make([][]float64, len(data))
	for i, x := range data {
		if opts.SkipNormalization {
			prepared[i] = x
		} else {
			prepared[i] = ts.ZNormalize(x)
		}
	}
	d := dist.PairwiseMatrix(dist.SBDMeasure{}, prepared)
	inner := opts
	inner.SkipNormalization = true
	bestK, bestS := 0, -2.0
	for kk := 2; kk <= kMax; kk++ {
		for r := int64(0); r < EstimateKRestarts; r++ {
			inner.Seed = opts.Seed + r*1_000_003
			res, err := Cluster(prepared, kk, inner)
			if err != nil {
				return 0, 0, err
			}
			if s := eval.Silhouette(d, res.Labels); s > bestS {
				bestK, bestS = kk, s
			}
		}
	}
	return bestK, bestS, nil
}

// RandIndex scores a clustering against ground-truth classes as the
// fraction of series pairs on which the two partitions agree — the accuracy
// metric of the paper's evaluation. It is symmetric and invariant to label
// permutation; 1 means identical partitions.
func RandIndex(pred, truth []int) float64 { return eval.RandIndex(pred, truth) }

// Measures lists the distance measures accepted by Classify1NN, in the
// order of the paper's Table 2 plus the extended elastic family.
func Measures() []string {
	return []string{"ED", "SBD", "DTW", "cDTW5", "cDTW10", "LCSS", "EDR", "ERP", "MSM", "TWED"}
}

func measureByName(name string) (dist.Measure, bool) {
	switch name {
	case "ED":
		return dist.EDMeasure{}, true
	case "SBD":
		return dist.SBDMeasure{}, true
	case "DTW":
		return dist.DTWMeasure{}, true
	case "cDTW5":
		return dist.NewCDTWFrac("cDTW5", 0.05), true
	case "cDTW10":
		return dist.NewCDTWFrac("cDTW10", 0.10), true
	case "LCSS":
		return dist.LCSSMeasure{}, true
	case "EDR":
		return dist.EDRMeasure{}, true
	case "ERP":
		return dist.ERPMeasure{}, true
	case "MSM":
		return dist.MSMMeasure{}, true
	case "TWED":
		return dist.TWEDMeasure{}, true
	}
	return nil, false
}

// Classify1NN labels each query with the class of its nearest training
// series under the named distance measure (see Measures) — the
// 1-nearest-neighbor protocol of the paper's distance evaluation (Table 2).
// Series are z-normalized first unless skipNormalization. Training rows and
// labels must align; all series must share one length.
func Classify1NN(train [][]float64, labels []int, queries [][]float64, measure string, skipNormalization bool) ([]int, error) {
	return Classify1NNWorkers(train, labels, queries, measure, skipNormalization, 0)
}

// Classify1NNWorkers is Classify1NN with an explicit degree of parallelism
// across queries: workers <= 0 means runtime.NumCPU(), 1 means fully
// serial. Predicted labels are identical for every worker count.
func Classify1NNWorkers(train [][]float64, labels []int, queries [][]float64, measure string, skipNormalization bool, workers int) ([]int, error) {
	if len(train) == 0 {
		return nil, errors.New("kshape: empty training set")
	}
	if len(train) != len(labels) {
		return nil, fmt.Errorf("kshape: %d training series but %d labels", len(train), len(labels))
	}
	m, ok := measureByName(measure)
	if !ok {
		return nil, fmt.Errorf("kshape: unknown measure %q (see kshape.Measures)", measure)
	}
	prep := func(rows [][]float64) [][]float64 {
		if skipNormalization {
			return rows
		}
		out := make([][]float64, len(rows))
		for i, x := range rows {
			out[i] = ts.ZNormalize(x)
		}
		return out
	}
	refs := prep(train)
	qs := prep(queries)
	// SBD routes through the spectrum cache (one transform per training
	// series, shared by all queries); SBDNearest and NNIndex use the same
	// ascending strict-< scan, so predictions are identical.
	if _, ok := m.(dist.SBDMeasure); ok && len(refs[0]) > 0 {
		out := make([]int, len(qs))
		for i, idx := range dist.SBDNearest(refs, qs, workers) {
			out[i] = labels[idx]
		}
		return out, nil
	}
	out := make([]int, len(queries))
	par.For(workers, len(qs), func(i int) {
		idx, _ := dist.NNIndex(m, qs[i], refs)
		out[i] = labels[idx]
	})
	return out, nil
}

// Predict assigns each query series to the nearest centroid under SBD,
// enabling out-of-sample extension of a clustering. Queries are
// z-normalized first unless skipNormalization. Queries run in parallel
// across all CPUs; the assignment is deterministic regardless.
func Predict(centroids [][]float64, queries [][]float64, skipNormalization bool) []int {
	if len(centroids) > 0 && len(centroids[0]) > 0 {
		// Batch path: the centroid spectra are cached once and every query
		// costs one forward transform; same tie-break as NNIndex.
		qs := queries
		if !skipNormalization {
			qs = make([][]float64, len(queries))
			for i, q := range queries {
				qs[i] = ts.ZNormalize(q)
			}
		}
		return dist.SBDNearest(centroids, qs, 0)
	}
	out := make([]int, len(queries))
	par.For(0, len(queries), func(i int) {
		q := queries[i]
		if !skipNormalization {
			q = ts.ZNormalize(q)
		}
		idx, _ := dist.NNIndex(dist.SBDMeasure{}, q, centroids)
		out[i] = idx
	})
	return out
}
