package kshape

import (
	"testing"
)

// TestClusterDeterministicAcrossWorkers pins the public-API contract stated
// on Options.Workers: for a fixed Seed, every worker count yields
// bit-identical labels, centroids, inertia, and iteration counts — across
// the scalable and non-scalable method families.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	data, _ := twoShapeClasses(12, 40, 3)
	for _, method := range []string{"k-Shape", "k-AVG+ED", "PAM+SBD", "S+ED"} {
		run := func(workers int) *Result {
			res, err := Cluster(data, 2, Options{Seed: 5, Method: method, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", method, workers, err)
			}
			return res
		}
		want := run(1)
		for _, w := range []int{0, 2, 8} {
			got := run(w)
			if got.Inertia != want.Inertia || got.Iterations != want.Iterations {
				t.Errorf("%s workers=%d: inertia/iterations = %v/%d, want %v/%d",
					method, w, got.Inertia, got.Iterations, want.Inertia, want.Iterations)
			}
			for i := range want.Labels {
				if got.Labels[i] != want.Labels[i] {
					t.Fatalf("%s workers=%d: label[%d] = %d, want %d",
						method, w, i, got.Labels[i], want.Labels[i])
				}
			}
			for j := range want.Centroids {
				for i := range want.Centroids[j] {
					if got.Centroids[j][i] != want.Centroids[j][i] {
						t.Fatalf("%s workers=%d: centroid[%d][%d] differs (must be bit-identical)",
							method, w, j, i)
					}
				}
			}
		}
	}
}

// TestClusterTraceDeterministicAcrossWorkers extends the guarantee to the
// instrumented path: the per-iteration inertia/churn trajectory and the
// kernel-counter totals must not depend on the worker count (only the
// wall-clock fields may).
func TestClusterTraceDeterministicAcrossWorkers(t *testing.T) {
	data, _ := twoShapeClasses(10, 32, 7)
	run := func(workers int) *Result {
		res, err := Cluster(data, 2, Options{Seed: 2, CollectTrace: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Trace == nil {
			t.Fatalf("workers=%d: no trace collected", workers)
		}
		return res
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got.Trace.Iterations) != len(want.Trace.Iterations) {
			t.Fatalf("workers=%d: %d trace iterations, want %d",
				w, len(got.Trace.Iterations), len(want.Trace.Iterations))
		}
		for i := range want.Trace.Iterations {
			wi, gi := want.Trace.Iterations[i], got.Trace.Iterations[i]
			if gi.Inertia != wi.Inertia || gi.LabelChurn != wi.LabelChurn || gi.Reseeds != wi.Reseeds {
				t.Errorf("workers=%d: trace[%d] inertia/churn/reseeds = %v/%d/%d, want %v/%d/%d",
					w, i, gi.Inertia, gi.LabelChurn, gi.Reseeds, wi.Inertia, wi.LabelChurn, wi.Reseeds)
			}
		}
		if got.Trace.Counters != want.Trace.Counters {
			t.Errorf("workers=%d: kernel counters %+v, want %+v (parallelism must not change operation counts)",
				w, got.Trace.Counters, want.Trace.Counters)
		}
	}
}

// TestClassify1NNWorkersDeterministic: predictions are identical for every
// worker count, and the plain Classify1NN entry point (all CPUs) matches.
func TestClassify1NNWorkersDeterministic(t *testing.T) {
	train, labels := twoShapeClasses(15, 30, 11)
	queries, _ := twoShapeClasses(10, 30, 13)
	want, err := Classify1NNWorkers(train, labels, queries, "SBD", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 8} {
		got, err := Classify1NNWorkers(train, labels, queries, "SBD", false, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: prediction[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
	plain, err := Classify1NN(train, labels, queries, "SBD", false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if plain[i] != want[i] {
			t.Fatalf("Classify1NN: prediction[%d] = %d, want %d", i, plain[i], want[i])
		}
	}
}
