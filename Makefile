GO ?= go
GOFMT ?= gofmt

.PHONY: build test test-short test-race vet lint fmt-check check bench smoke fuzz golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast subset: skips the multi-minute experiment sweeps.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the deterministic parallel substrate
# (internal/par) and every package that computes through it: the Lloyd /
# k-Shape engines, distance-matrix builds, PAM/spectral scans, 1-NN
# evaluation, the atomic counters in internal/obs, and the public API.
test-race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/par/ ./internal/obs/ ./internal/core/ ./internal/dist/ ./internal/eval/ ./internal/cluster/ .

# Two passes: the full default vet suite, then an explicit -copylocks
# -atomic pass so the two analyses the concurrency layer leans on hardest
# stay enabled even if the default set ever changes.
vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -atomic ./...

# Repo-specific static analysis (cmd/kshapelint): floatcmp, detrand,
# goroutine, maporder, errdrop. Exits nonzero on any unsuppressed
# diagnostic; suppress deliberate cases with //lint:ignore <check> <reason>.
lint:
	$(GO) run ./cmd/kshapelint ./...

# Fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out=$$($(GOFMT) -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Telemetry smoke test: a real clustering run with -listen, scraped over
# HTTP, asserting the kernel counters and phase histograms appear on
# /metrics (see cmd/kshape/telemetry_test.go).
smoke:
	$(GO) test -run TestTelemetrySmoke -count=1 ./cmd/kshape/

# Coverage-guided fuzzing smoke pass: every fuzz target for FUZZTIME
# (default 10s). The checked-in seed corpora under testdata/fuzz/ also run
# as plain regression tests during `make test`; this target additionally
# mutates beyond them. Regenerate the corpora with
# `go run ./internal/testkit/gencorpus`.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz='^FuzzSBD$$' -fuzztime=$(FUZZTIME) ./internal/dist/
	$(GO) test -fuzz='^FuzzDTWBand$$' -fuzztime=$(FUZZTIME) ./internal/dist/
	$(GO) test -fuzz='^FuzzFFTRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/fft/
	$(GO) test -fuzz='^FuzzZNormalize$$' -fuzztime=$(FUZZTIME) ./internal/ts/
	$(GO) test -fuzz='^FuzzUCRLoader$$' -fuzztime=$(FUZZTIME) ./internal/dataset/

# Regenerates the golden snapshots (testdata/golden/) after a deliberate,
# reviewed renderer change. `make test` fails on any byte of drift.
golden:
	$(GO) test ./internal/experiments/ ./cmd/kshape/ ./cmd/benchjson/ -run Golden -update

# Pre-commit gate, cheapest first so failures surface early: formatting,
# go vet, the repo's own analyzers (kshapelint), the full test suite
# (which includes the differential-oracle suite, the golden snapshots, and
# the fuzz seed corpora as regression tests), the race-detector pass over
# the parallel packages, and the telemetry smoke test, in that order. Run
# `make fuzz` separately for the coverage-guided mutation pass.
check: fmt-check vet lint test test-race smoke

# Runs every benchmark once (including the serial-vs-parallel family with
# its speedup and kernel-counter metrics) and regenerates the committed
# BENCH_kshape.json via cmd/benchjson. The intermediate bench.out keeps
# the raw `go test -bench` text around for inspection; it is gitignored.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ . > bench.out
	cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_kshape.json bench.out
	@echo "wrote BENCH_kshape.json"
