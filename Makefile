GO ?= go
GOFMT ?= gofmt

.PHONY: build test test-short test-race vet fmt-check check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast subset: skips the multi-minute experiment sweeps.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the deterministic parallel substrate
# (internal/par) and every package that computes through it: the Lloyd /
# k-Shape engines, distance-matrix builds, PAM/spectral scans, 1-NN
# evaluation, the atomic counters in internal/obs, and the public API.
test-race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/par/ ./internal/obs/ ./internal/core/ ./internal/dist/ ./internal/eval/ ./internal/cluster/ .

vet:
	$(GO) vet ./...

# Fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out=$$($(GOFMT) -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Pre-commit gate: formatting, static analysis, the full test suite, and the
# race-detector pass over the parallel packages, in that order.
check: fmt-check vet test test-race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
