GO ?= go

.PHONY: build test test-short test-race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast subset: skips the multi-minute experiment sweeps.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the worker pools (dist matrix builds, 1-NN
# evaluation, experiment sweeps) and the atomic counters in internal/obs.
test-race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/obs/ ./internal/core/ ./internal/dist/ ./internal/eval/ .

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
