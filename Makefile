GO ?= go
GOFMT ?= gofmt

# `go test` / `go run` binaries carry no VCS stamp (only `go build` does),
# so the bench and report tooling would record revision "unknown". These
# ldflags feed the real revision through the internal/obs fallbacks.
VCS_REVISION := $(shell git rev-parse HEAD 2>/dev/null || echo unknown)
VCS_MODIFIED := $(shell test -n "$$(git status --porcelain 2>/dev/null)" && echo true || echo false)
VCS_LDFLAGS := -ldflags "-X kshape/internal/obs.fallbackRevision=$(VCS_REVISION) -X kshape/internal/obs.fallbackModified=$(VCS_MODIFIED)"

.PHONY: build test test-short test-race vet lint fmt-check check bench bench-diff bench-smoke smoke fuzz golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast subset: skips the multi-minute experiment sweeps.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the deterministic parallel substrate
# (internal/par) and every package that computes through it: the Lloyd /
# k-Shape engines, distance-matrix builds, PAM/spectral scans, 1-NN
# evaluation, the atomic counters in internal/obs, and the public API.
test-race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/par/ ./internal/obs/ ./internal/core/ ./internal/dist/ ./internal/eval/ ./internal/cluster/ .

# Two passes: the full default vet suite, then an explicit -copylocks
# -atomic pass so the two analyses the concurrency layer leans on hardest
# stay enabled even if the default set ever changes.
vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -atomic ./...

# Repo-specific static analysis (cmd/kshapelint): the per-file checks
# (floatcmp, detrand, goroutine, maporder, errdrop) plus the
# interprocedural ones (hotpath, atomicinv, ignoredrift) — the latter
# share one call graph / function-summary cache built once per run.
# Exits nonzero on any unsuppressed diagnostic; suppress deliberate
# cases with //lint:ignore <check> <reason>, and use
# `go run ./cmd/kshapelint -diff ./...` to preview stale-directive
# removals as a dry-run patch.
lint:
	$(GO) run ./cmd/kshapelint ./...

# Fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out=$$($(GOFMT) -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Telemetry smoke test: a real clustering run with -listen, scraped over
# HTTP, asserting the kernel counters and phase histograms appear on
# /metrics (see cmd/kshape/telemetry_test.go).
smoke:
	$(GO) test -run TestTelemetrySmoke -count=1 ./cmd/kshape/

# Coverage-guided fuzzing smoke pass: every fuzz target for FUZZTIME
# (default 10s). The checked-in seed corpora under testdata/fuzz/ also run
# as plain regression tests during `make test`; this target additionally
# mutates beyond them. Regenerate the corpora with
# `go run ./internal/testkit/gencorpus`.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz='^FuzzSBD$$' -fuzztime=$(FUZZTIME) ./internal/dist/
	$(GO) test -fuzz='^FuzzDTWBand$$' -fuzztime=$(FUZZTIME) ./internal/dist/
	$(GO) test -fuzz='^FuzzFFTRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/fft/
	$(GO) test -fuzz='^FuzzRFFT$$' -fuzztime=$(FUZZTIME) ./internal/fft/
	$(GO) test -fuzz='^FuzzZNormalize$$' -fuzztime=$(FUZZTIME) ./internal/ts/
	$(GO) test -fuzz='^FuzzUCRLoader$$' -fuzztime=$(FUZZTIME) ./internal/dataset/

# Regenerates the golden snapshots (testdata/golden/) after a deliberate,
# reviewed renderer change. `make test` fails on any byte of drift.
golden:
	$(GO) test ./internal/experiments/ ./internal/obs/ ./internal/plot/ ./cmd/kshape/ ./cmd/benchjson/ -run Golden -update

# Pre-commit gate, cheapest first so failures surface early: formatting,
# go vet, the repo's own analyzers (kshapelint), the full test suite
# (which includes the differential-oracle suite, the golden snapshots, and
# the fuzz seed corpora as regression tests), the race-detector pass over
# the parallel packages, and the telemetry smoke test, in that order. Run
# `make fuzz` separately for the coverage-guided mutation pass.
check: fmt-check vet lint test test-race smoke

# Runs every benchmark (including the serial-vs-parallel family with its
# speedup and kernel-counter metrics) and regenerates the committed
# BENCH_kshape.json via cmd/benchjson. Two noise defenses, both needed
# before the 10% bench-diff gate is meaningful on a shared machine:
# time-based -benchtime gives the microsecond-class kernels the thousands
# of iterations that average out scheduler jitter (the second-class
# experiment sweeps naturally stay at one or two), and -count=5 repeats
# the whole suite so each benchmark's fastest pass — the least-interfered
# one — is what benchjson records, riding out background load that drifts
# on a minutes timescale. The intermediate bench.out keeps the raw
# `go test -bench` text around for inspection; it is gitignored.
bench:
	$(GO) test $(VCS_LDFLAGS) -bench=. -benchtime=1s -count=5 -run=^$$ . > bench.out
	cat bench.out
	$(GO) run $(VCS_LDFLAGS) ./cmd/benchjson -o BENCH_kshape.json bench.out
	@echo "wrote BENCH_kshape.json"

# Regression gate: rerun the full benchmark suite into a fresh report and
# compare it against the committed baseline with cmd/benchdiff, failing on
# any benchmark whose ns/op grew beyond BENCH_THRESHOLD. The fresh report
# is kept (gitignored) for inspection.
BENCH_THRESHOLD ?= 10%
bench-diff:
	$(GO) test $(VCS_LDFLAGS) -bench=. -benchtime=1s -count=5 -run=^$$ . > bench-new.out
	$(GO) run $(VCS_LDFLAGS) ./cmd/benchjson -o bench-new.json bench-new.out
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_THRESHOLD) BENCH_kshape.json bench-new.json

# CI-sized regression smoke: only the ~100ms-class parallel benchmarks
# (microsecond kernels are too jittery for single-shot timing), three
# iterations each, compared against the committed baseline with a loose
# threshold — this catches egregious regressions on noisy CI machines;
# `make bench-diff` is the strict local gate. Also runs one instrumented
# kbench whose flight report (bench-smoke-report.json) and HTML run
# dashboard (bench-smoke-dashboard.html) are uploaded as build artifacts.
BENCH_SMOKE_THRESHOLD ?= 50%
bench-smoke:
	$(GO) test $(VCS_LDFLAGS) -bench='DistanceMatrixSBD|KShapeRefinement|OneNN' -benchtime=3x -run=^$$ . > bench-smoke.out
	$(GO) run $(VCS_LDFLAGS) ./cmd/benchjson -o bench-smoke.json bench-smoke.out
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_SMOKE_THRESHOLD) BENCH_kshape.json bench-smoke.json
	$(GO) run $(VCS_LDFLAGS) ./cmd/kbench -datasets 2 -runs 1 -workers 4 -report bench-smoke-report.json -dashboard bench-smoke-dashboard.html table3 > /dev/null
