// bench_test.go provides one testing.B benchmark per table and figure of
// the paper's evaluation (run the cmd/kbench binary for the full-scale
// regeneration with printed rows), plus micro-benchmarks for the primitive
// operations whose costs drive Table 2's runtime column.
//
// The per-experiment benchmarks run on deliberately small archive subsets
// so that `go test -bench=. -benchmem` completes in minutes; the shapes of
// the results (who wins, by roughly what factor) match the full runs
// recorded in EXPERIMENTS.md.
package kshape

import (
	"io"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"kshape/internal/avg"
	"kshape/internal/core"
	"kshape/internal/dataset"
	"kshape/internal/dist"
	"kshape/internal/eval"
	"kshape/internal/experiments"
	"kshape/internal/obs"
	"kshape/internal/ts"
)

// benchConfig builds an experiment configuration over the named archive
// datasets with minimal run counts.
func benchConfig(b *testing.B, names ...string) experiments.Config {
	b.Helper()
	cfg := experiments.Config{Runs: 2, SpectralRuns: 2, Seed: 1, MaxWindowFrac: 0.10}
	for _, name := range names {
		ds, ok := dataset.ArchiveByName(name)
		if !ok {
			b.Fatalf("dataset %q not in archive", name)
		}
		cfg.Datasets = append(cfg.Datasets, ds)
	}
	return cfg
}

// --- one benchmark per table ------------------------------------------------

func BenchmarkTable2Distances(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table2(cfg)
	}
}

func BenchmarkTable3Scalable(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table3(cfg)
	}
}

func BenchmarkTable4NonScalable(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.ResetMatrixCache() // the matrix build is part of the cost
		experiments.Table4(cfg)
	}
}

// --- one benchmark per figure ------------------------------------------------

func BenchmarkFig2WarpingPath(b *testing.B) {
	cfg := benchConfig(b, "TinyWaves")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig2(cfg)
	}
}

func BenchmarkFig3Normalizations(b *testing.B) {
	cfg := benchConfig(b, "TinyWaves")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig3(cfg)
	}
}

func BenchmarkFig4ShapeExtractionVsMean(b *testing.B) {
	cfg := benchConfig(b, "ECGLike")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig4(cfg)
	}
}

func BenchmarkFig5Scatter(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	t2 := experiments.Table2(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig5(cfg, t2)
	}
}

func BenchmarkFig6DistanceRanks(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	t2 := experiments.Table2(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig6(cfg, t2)
	}
}

func BenchmarkFig7ClusterScatter(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	t3 := experiments.Table3(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(cfg, t3)
	}
}

func BenchmarkFig8ClusterRanks(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	t3 := experiments.Table3(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig8(cfg, t3)
	}
}

func BenchmarkFig9CombinedRanks(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	t3 := experiments.Table3(cfg)
	t4 := experiments.Table4(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig9(cfg, t3, t4)
	}
}

func BenchmarkFig10OptimalScaling(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AppendixA(cfg, experiments.NormOptimalScaling)
	}
}

func BenchmarkFig11Values01(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AppendixA(cfg, experiments.NormValues01)
	}
}

func BenchmarkFig12ScalabilityVaryN(b *testing.B) {
	cfg := benchConfig(b, "TinyWaves")
	cfg.Progress = io.Discard
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig12Sizes(cfg, []int{120, 240}, 64, nil, 0)
	}
}

func BenchmarkFig12ScalabilityVaryM(b *testing.B) {
	cfg := benchConfig(b, "TinyWaves")
	cfg.Progress = io.Discard
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig12Sizes(cfg, nil, 0, []int{32, 64}, 120)
	}
}

// --- micro-benchmarks: the primitives behind Table 2's runtime column ---------

func benchPair(m int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, m)
	y := make([]float64, m)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	return ts.ZNormalizeInPlace(x), ts.ZNormalizeInPlace(y)
}

func BenchmarkED128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.ED(x, y)
	}
}

func BenchmarkSBD128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.SBDDist(x, y)
	}
}

func BenchmarkSBDNoFFT128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.SBDNoFFT(x, y)
	}
}

func BenchmarkSBDBatch128(b *testing.B) {
	x, y := benchPair(128)
	batch := dist.NewSBDBatch([][]float64{y})
	q := batch.Query(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Distance(0)
	}
}

func BenchmarkDTW128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.DTW(x, y)
	}
}

func BenchmarkCDTW5_128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.CDTW(x, y, 6)
	}
}

func BenchmarkShapeExtraction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cluster := make([][]float64, 30)
	for i := range cluster {
		x := make([]float64, 128)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		cluster[i] = ts.ZNormalizeInPlace(x)
	}
	ref := cluster[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		avg.ShapeExtraction(cluster, ref)
	}
}

func BenchmarkKShapeCBF300x128(b *testing.B) {
	data := ts.Rows(dataset.CBF(300, 128, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.KShape(data, 3, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKAvgEDCBF300x128(b *testing.B) {
	data := ts.Rows(dataset.CBF(300, 128, 1))
	meanAvg := avg.MeanAverager{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Lloyd(data, core.Config{
			K:        3,
			Distance: func(c, x []float64) float64 { return dist.ED(c, x) },
			Centroid: meanAvg.Average,
			Rand:     rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Ablations(cfg)
	}
}

func BenchmarkTable2Extended(b *testing.B) {
	cfg := benchConfig(b, "ShortWaves", "ShortBumps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table2Extended(cfg)
	}
}

// --- serial vs parallel: the internal/par execution layer ---------------------
//
// Each parallel benchmark measures a baseline and the production parallel
// path outside the timed region (paired minima, see pairedMinDurations) and
// reports their ratio as a "speedup" metric, so `go test -bench Parallel`
// prints the gain of the deterministic parallel path directly. The
// pairwise-matrix baseline is the per-pair SBD build every caller ran
// before the spectrum cache — its speedup is the end-to-end gain of RFFT +
// cached spectra + batch NCC; the k-Shape and 1-NN baselines are the same
// engine at workers=1, pinning the parallel layer at >= 1x (the pool
// collapses to the serial path when the machine cannot run chunks
// concurrently; on a multi-core machine the ratio reflects real scaling).
// The outputs themselves are bit-identical either way (see the determinism
// tests), so the worker count is purely a throughput knob.

// benchParallelWorkers is the worker count the parallel variants run with.
const benchParallelWorkers = 8

// pairedMinDurations measures the speedup inputs with the same paired-
// minimum protocol BenchmarkDistanceMatrixSBDRecorder uses for its overhead
// metric: baseline and candidate runs alternate, each behind a forced
// collection so GC state cannot align with one side, and the fastest
// observation per side is kept. Interference on a shared machine only ever
// slows a run down, so the minima converge to the true per-side costs and
// their ratio is stable to a few tenths of a percent — where a single
// -benchtime=1x sample against an averaged baseline flaps by several
// percent.
func pairedMinDurations(rounds int, baseline, candidate func()) (base, cand time.Duration) {
	base, cand = -1, -1
	timeIt := func(fn func()) time.Duration {
		runtime.GC()
		start := time.Now()
		fn()
		return time.Since(start)
	}
	for r := 0; r < rounds; r++ {
		// Alternate which side runs first (ABBA) so periodic interference —
		// a neighbor VM stealing the CPU on a fixed cadence — cannot stay
		// phase-aligned with one side across every round.
		if r%2 == 0 {
			if d := timeIt(baseline); base < 0 || d < base {
				base = d
			}
			if d := timeIt(candidate); cand < 0 || d < cand {
				cand = d
			}
		} else {
			if d := timeIt(candidate); cand < 0 || d < cand {
				cand = d
			}
			if d := timeIt(baseline); base < 0 || d < base {
				base = d
			}
		}
	}
	return base, cand
}

// reportSpeedup reports baseline/candidate as the "speedup" metric, rounded
// to one decimal — the honest precision of a paired-minimum measurement on
// a shared machine (two minima of the *same* workload still land a percent
// or two apart): real regressions still move the number, while sub-noise
// digits stop flapping the recorded baseline.
func reportSpeedup(b *testing.B, baseline, candidate time.Duration) {
	b.ReportMetric(math.Round(float64(baseline)/float64(candidate)*10)/10, "speedup")
}

// benchCounters enables kernel-counter collection and returns a stop
// function that reports each nonzero counter delta as a per-op metric
// ("fft/op", "sbd/op", ...), which cmd/benchjson folds into
// BENCH_kshape.json. Call it after any untimed setup or serial-baseline
// work so the delta covers only the measured loop; the atomic increments
// add a few nanoseconds per kernel call, negligible at the granularity
// these benchmarks measure.
func benchCounters(b *testing.B) func() {
	b.Helper()
	prev := obs.SetEnabled(true)
	before := obs.ReadCounters()
	return func() {
		delta := obs.ReadCounters().Sub(before)
		obs.SetEnabled(prev)
		if b.N == 0 {
			return
		}
		delta.Each(func(name string, v int64) {
			if v != 0 {
				b.ReportMetric(float64(v)/float64(b.N), name+"/op")
			}
		})
	}
}

// perPairSBD forces the generic per-pair PairwiseMatrixWorkers path (three
// full-size FFTs per pair, allocating per call) by hiding SBD behind a
// Func: the baseline the cached-spectra batch path is measured against.
var perPairSBD = dist.Func{Label: "SBD", Fn: dist.SBDDist}

func BenchmarkDistanceMatrixSBDSerial(b *testing.B) {
	data := ts.Rows(dataset.CBF(120, 128, 1))
	stop := benchCounters(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.PairwiseMatrixWorkers(dist.SBDMeasure{}, data, 1)
	}
	b.StopTimer()
	stop()
}

// BenchmarkDistanceMatrixSBDPerPair keeps the legacy per-pair matrix build
// measured so its cost stays visible next to the batch path it was
// replaced by.
func BenchmarkDistanceMatrixSBDPerPair(b *testing.B) {
	data := ts.Rows(dataset.CBF(120, 128, 1))
	stop := benchCounters(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.PairwiseMatrixWorkers(perPairSBD, data, 1)
	}
	b.StopTimer()
	stop()
}

// BenchmarkDistanceMatrixSBDParallel times the production pairwise path —
// cached spectra at benchParallelWorkers — and reports as "speedup" its
// gain over the serial per-pair implementation (the code every caller ran
// before the spectrum cache): the end-to-end effect of RFFT + cached
// spectra + batch NCC + the parallel layer on one matrix build.
func BenchmarkDistanceMatrixSBDParallel(b *testing.B) {
	data := ts.Rows(dataset.CBF(120, 128, 1))
	serial, parallel := pairedMinDurations(10,
		func() { dist.PairwiseMatrixWorkers(perPairSBD, data, 1) },
		func() { dist.PairwiseMatrixWorkers(dist.SBDMeasure{}, data, benchParallelWorkers) })
	stop := benchCounters(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.PairwiseMatrixWorkers(dist.SBDMeasure{}, data, benchParallelWorkers)
	}
	b.StopTimer()
	stop()
	reportSpeedup(b, serial, parallel)
}

// BenchmarkDistanceMatrixSBDBatchSteady pins the steady-state allocation
// behavior of the batch pairwise kernel: spectra cached, output matrix and
// scratch preallocated, so the measured loop is pure spectral products,
// half-size inverse transforms, and lag scans — 0 B/op by construction,
// gated in BENCH_kshape.json.
func BenchmarkDistanceMatrixSBDBatchSteady(b *testing.B) {
	data := ts.Rows(dataset.CBF(120, 128, 1))
	batch := dist.NewSBDBatch(data)
	out := make([][]float64, batch.Len())
	for i := range out {
		out[i] = make([]float64, batch.Len())
	}
	batch.PairwiseInto(out, 1) // warm the scratch pool
	stop := benchCounters(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.PairwiseInto(out, 1)
	}
	b.StopTimer()
	stop()
}

// BenchmarkDistanceMatrixSBDRecorder measures the flight recorder's cost
// on the parallel pairwise-matrix build. The ns/op column times the
// recorded path; the "recorder_overhead_pct" metric is a paired
// measurement (recorder off vs on, interleaved, median of several pairs —
// robust to the noise a single -benchtime=1x sample would have) that
// lands in BENCH_kshape.json as the tracked overhead number. The recorder
// only adds clock reads around chunk bodies, so the budget is <= 2%.
func BenchmarkDistanceMatrixSBDRecorder(b *testing.B) {
	data := ts.Rows(dataset.CBF(120, 128, 1))
	work := func() { dist.PairwiseMatrixWorkers(dist.SBDMeasure{}, data, benchParallelWorkers) }
	work() // warm caches before any timing

	// Paired overhead measurement, outside the timed region: alternate
	// recorder-off and recorder-on runs and compare the fastest run of
	// each side. Interference (GC, scheduler preemption, other container
	// load) only ever slows a run down, so the minimum over many runs
	// converges to the true cost per side and their ratio to the true
	// overhead — far more stable than averaging on a shared machine.
	// Each run allocates ~80MB, so collection cycles trigger every few
	// runs and can align with the off/on alternation, charging GC to one
	// side. Forcing a collection before every timed run pins both sides
	// to the same collector state (the GC itself runs outside the timed
	// window).
	const rounds = 18
	timeIt := func() time.Duration {
		runtime.GC()
		start := time.Now()
		work()
		return time.Since(start)
	}
	minOff, minOn := time.Duration(-1), time.Duration(-1)
	for p := 0; p < rounds; p++ {
		if d := timeIt(); minOff < 0 || d < minOff {
			minOff = d
		}
		prev := obs.SetRecorder(obs.NewRecorder(0))
		d := timeIt()
		obs.SetRecorder(prev)
		if minOn < 0 || d < minOn {
			minOn = d
		}
	}
	overheadPct := (float64(minOn)/float64(minOff) - 1) * 100

	// The timed loop runs the recorded path, so ns/op is directly
	// comparable with BenchmarkDistanceMatrixSBDParallel's.
	prev := obs.SetRecorder(obs.NewRecorder(0))
	defer obs.SetRecorder(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work()
	}
	b.StopTimer()
	b.ReportMetric(overheadPct, "recorder_overhead_pct")
}

// BenchmarkKShapeProgressPublisher measures the live-progress layer's
// cost on a full k-Shape run: with a publisher installed, the engine's
// run observer computes per-cluster centroid drift and the sampled
// silhouette each iteration and publishes an atomic snapshot. The
// "progress_overhead_pct" metric uses the same paired-minimum protocol as
// recorder_overhead_pct (alternating off/on runs, a forced collection
// before each, fastest run per side) and lands in BENCH_kshape.json as
// the tracked overhead number; the budget is <= 2%.
func BenchmarkKShapeProgressPublisher(b *testing.B) {
	data := ts.Rows(dataset.CBF(240, 128, 1))
	work := func() {
		if _, err := core.KShapeRun(data, 3, rand.New(rand.NewSource(1)), core.KShapeOpts{Workers: benchParallelWorkers}); err != nil {
			b.Fatal(err)
		}
	}
	work() // warm caches before any timing

	const rounds = 18
	timeIt := func() time.Duration {
		runtime.GC()
		start := time.Now()
		work()
		return time.Since(start)
	}
	minOff, minOn := time.Duration(-1), time.Duration(-1)
	for p := 0; p < rounds; p++ {
		if d := timeIt(); minOff < 0 || d < minOff {
			minOff = d
		}
		prev := obs.SetProgressPublisher(obs.NewProgressPublisher())
		d := timeIt()
		obs.SetProgressPublisher(prev)
		if minOn < 0 || d < minOn {
			minOn = d
		}
	}
	overheadPct := (float64(minOn)/float64(minOff) - 1) * 100

	// The timed loop runs the published path, so ns/op is directly
	// comparable with BenchmarkKShapeRefinementParallel's.
	prev := obs.SetProgressPublisher(obs.NewProgressPublisher())
	defer obs.SetProgressPublisher(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work()
	}
	b.StopTimer()
	b.ReportMetric(overheadPct, "progress_overhead_pct")
}

func BenchmarkKShapeRefinementSerial(b *testing.B) {
	data := ts.Rows(dataset.CBF(240, 128, 1))
	stop := benchCounters(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.KShapeRun(data, 3, rand.New(rand.NewSource(1)), core.KShapeOpts{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stop()
}

func BenchmarkKShapeRefinementParallel(b *testing.B) {
	data := ts.Rows(dataset.CBF(240, 128, 1))
	serial, parallel := pairedMinDurations(10,
		func() {
			if _, err := core.KShapeRun(data, 3, rand.New(rand.NewSource(1)), core.KShapeOpts{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		},
		func() {
			if _, err := core.KShapeRun(data, 3, rand.New(rand.NewSource(1)), core.KShapeOpts{Workers: benchParallelWorkers}); err != nil {
				b.Fatal(err)
			}
		})
	stop := benchCounters(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.KShapeRun(data, 3, rand.New(rand.NewSource(1)), core.KShapeOpts{Workers: benchParallelWorkers}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stop()
	reportSpeedup(b, serial, parallel)
}

func BenchmarkOneNNSerial(b *testing.B) {
	train := dataset.CBF(90, 128, 1)
	test := dataset.CBF(60, 128, 2)
	stop := benchCounters(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.OneNNAccuracyWorkers(dist.SBDMeasure{}, train, test, 1)
	}
	b.StopTimer()
	stop()
}

func BenchmarkOneNNParallel(b *testing.B) {
	train := dataset.CBF(90, 128, 1)
	test := dataset.CBF(60, 128, 2)
	serial, parallel := pairedMinDurations(10,
		func() { eval.OneNNAccuracyWorkers(dist.SBDMeasure{}, train, test, 1) },
		func() { eval.OneNNAccuracyWorkers(dist.SBDMeasure{}, train, test, benchParallelWorkers) })
	stop := benchCounters(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.OneNNAccuracyWorkers(dist.SBDMeasure{}, train, test, benchParallelWorkers)
	}
	b.StopTimer()
	stop()
	reportSpeedup(b, serial, parallel)
}

func BenchmarkSBD1024(b *testing.B) {
	x, y := benchPair(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.SBDDist(x, y)
	}
}

func BenchmarkSBDNoFFT1024(b *testing.B) {
	x, y := benchPair(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.SBDNoFFT(x, y)
	}
}

func BenchmarkED1024(b *testing.B) {
	x, y := benchPair(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.ED(x, y)
	}
}
