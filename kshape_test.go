package kshape

import (
	"math"
	"math/rand"
	"testing"
)

// twoShapeClasses builds raw (unnormalized) data with two shape classes and
// random amplitude/offset/phase distortions.
func twoShapeClasses(nPerClass, m int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var data [][]float64
	var labels []int
	for c := 0; c < 2; c++ {
		for i := 0; i < nPerClass; i++ {
			x := make([]float64, m)
			shift := rng.Intn(7) - 3
			amp := 0.5 + 3*rng.Float64()
			off := 10 * rng.NormFloat64()
			for j := range x {
				t := 2 * math.Pi * float64(j+shift) / float64(m)
				v := math.Sin(t)
				if c == 1 {
					v = math.Abs(v) - 0.5
				}
				x[j] = amp*v + off + 0.1*rng.NormFloat64()
			}
			data = append(data, x)
			labels = append(labels, c)
		}
	}
	return data, labels
}

func purity(pred, truth []int, k int) float64 {
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for i, p := range pred {
		counts[p][truth[i]]++
	}
	correct := 0
	for _, c := range counts {
		best := 0
		for _, v := range c {
			if v > best {
				best = v
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred))
}

func TestClusterDefaultKShape(t *testing.T) {
	data, truth := twoShapeClasses(25, 64, 1)
	res, err := Cluster(data, 2, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(res.Labels, truth, 2); p < 0.9 {
		t.Errorf("purity = %v", p)
	}
	if len(res.Centroids) != 2 {
		t.Errorf("centroids = %d", len(res.Centroids))
	}
	if res.Iterations < 1 {
		t.Error("no iterations reported")
	}
}

func TestClusterReproducibleWithSeed(t *testing.T) {
	data, _ := twoShapeClasses(15, 48, 2)
	a, err := Cluster(data, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(data, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestClusterNormalizationMatters(t *testing.T) {
	// Raw data has wild amplitude/offset differences; the automatic
	// z-normalization should make clustering work anyway.
	data, truth := twoShapeClasses(20, 64, 4)
	res, err := Cluster(data, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(res.Labels, truth, 2); p < 0.85 {
		t.Errorf("purity with auto-normalization = %v", p)
	}
	// Input must not be mutated by normalization.
	if data[0][0] == 0 && data[0][1] == 0 {
		t.Error("input appears zeroed")
	}
}

func TestClusterMethodSelection(t *testing.T) {
	data, truth := twoShapeClasses(10, 32, 6)
	for _, method := range []string{"k-AVG+ED", "PAM+SBD", "H-C+SBD", "S+SBD"} {
		res, err := Cluster(data, 2, Options{Seed: 8, Method: method})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if p := purity(res.Labels, truth, 2); p < 0.7 {
			t.Errorf("%s purity = %v", method, p)
		}
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, 2, Options{}); err == nil {
		t.Error("empty data accepted")
	}
	data, _ := twoShapeClasses(3, 16, 9)
	if _, err := Cluster(data, 2, Options{Method: "bogus"}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := Cluster(data, 100, Options{}); err == nil {
		t.Error("k > n accepted")
	}
}

func TestMethodsRegistryComplete(t *testing.T) {
	reg := methodRegistry(0)
	for _, name := range Methods() {
		if _, ok := reg[name]; !ok {
			t.Errorf("Methods lists %q but the registry lacks it", name)
		}
	}
	if len(reg) != len(Methods()) {
		t.Errorf("registry has %d entries, Methods lists %d", len(reg), len(Methods()))
	}
}

func TestSBDFacade(t *testing.T) {
	x := ZNormalize([]float64{0, 1, 2, 1, 0, -1, -2, -1})
	d, aligned := SBD(x, x)
	if d > 1e-9 {
		t.Errorf("SBD(x,x) = %v", d)
	}
	if len(aligned) != len(x) {
		t.Errorf("aligned length = %d", len(aligned))
	}
	if dd := SBDDistance(x, x); math.Abs(dd-d) > 1e-12 {
		t.Errorf("SBDDistance inconsistent: %v vs %v", dd, d)
	}
}

func TestShapeExtractFacade(t *testing.T) {
	data, _ := twoShapeClasses(10, 32, 10)
	members := make([][]float64, 10)
	for i := range members {
		members[i] = ZNormalize(data[i])
	}
	c := ShapeExtract(members, nil)
	if len(c) != 32 {
		t.Fatalf("centroid length = %d", len(c))
	}
	// The centroid should be closer (on average) to its members than a
	// random member of the other class is.
	avgD := 0.0
	for _, m := range members {
		avgD += SBDDistance(c, m)
	}
	avgD /= float64(len(members))
	other := ZNormalize(data[len(data)-1])
	otherD := 0.0
	for _, m := range members {
		otherD += SBDDistance(other, m)
	}
	otherD /= float64(len(members))
	if avgD >= otherD {
		t.Errorf("centroid avg SBD %v not better than cross-class %v", avgD, otherD)
	}
}

func TestPredict(t *testing.T) {
	data, truth := twoShapeClasses(15, 48, 11)
	res, err := Cluster(data, 2, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Predicting the training data must agree with the fitted labels.
	pred := Predict(res.Centroids, data, false)
	agree := 0
	for i := range pred {
		if pred[i] == res.Labels[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(pred)); frac < 0.95 {
		t.Errorf("predict/fit agreement = %v", frac)
	}
	// Fresh queries should land in shape-consistent clusters.
	fresh, freshTruth := twoShapeClasses(10, 48, 13)
	fp := Predict(res.Centroids, fresh, false)
	if p := purity(fp, freshTruth, 2); p < 0.85 {
		t.Errorf("out-of-sample purity = %v", p)
	}
	_ = truth
}

func TestClusterMaxIterations(t *testing.T) {
	data, _ := twoShapeClasses(15, 32, 14)
	res, err := Cluster(data, 2, Options{Seed: 15, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
}

func TestClusterRejectsBadInput(t *testing.T) {
	// Ragged lengths.
	if _, err := Cluster([][]float64{{1, 2, 3}, {1, 2}}, 2, Options{}); err == nil {
		t.Error("ragged input accepted")
	}
	// Non-finite values.
	if _, err := Cluster([][]float64{{1, math.NaN(), 3}, {1, 2, 3}}, 2, Options{}); err == nil {
		t.Error("NaN input accepted")
	}
	if _, err := Cluster([][]float64{{1, math.Inf(1), 3}, {1, 2, 3}}, 2, Options{}); err == nil {
		t.Error("Inf input accepted")
	}
}

func TestClusterConstantSeriesSurvive(t *testing.T) {
	// Constant (zero-variance) series z-normalize to zeros; clustering must
	// stay well defined and terminate.
	data := [][]float64{
		{5, 5, 5, 5, 5, 5, 5, 5},
		{5, 5, 5, 5, 5, 5, 5, 5},
		{0, 1, 0, -1, 0, 1, 0, -1},
		{0, 1, 0, -1, 0, 1, 0, -1},
	}
	res, err := Cluster(data, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 4 {
		t.Fatalf("labels = %v", res.Labels)
	}
	// The two sine series should share a cluster.
	if res.Labels[2] != res.Labels[3] {
		t.Errorf("identical sine series split across clusters: %v", res.Labels)
	}
}

func TestEstimateKFindsTrueK(t *testing.T) {
	data, _ := twoShapeClasses(20, 48, 21)
	k, sil, err := EstimateK(data, 5, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("estimated k = %d, want 2 (silhouette %v)", k, sil)
	}
	if sil <= 0 {
		t.Errorf("silhouette = %v, want > 0 on separable data", sil)
	}
}

func TestEstimateKErrors(t *testing.T) {
	if _, _, err := EstimateK([][]float64{{1, 2}}, 3, Options{}); err == nil {
		t.Error("too few series accepted")
	}
	data, _ := twoShapeClasses(5, 16, 22)
	if _, _, err := EstimateK(data, 1, Options{}); err == nil {
		t.Error("kMax < 2 accepted")
	}
	// kMax beyond n-1 is clamped, not an error.
	if _, _, err := EstimateK(data[:4], 10, Options{Seed: 1}); err != nil {
		t.Errorf("clamped kMax errored: %v", err)
	}
}

func TestPAAFacadeComposesWithCluster(t *testing.T) {
	data, truth := twoShapeClasses(15, 64, 23)
	reduced := make([][]float64, len(data))
	for i, x := range data {
		reduced[i] = PAA(x, 16)
	}
	res, err := Cluster(reduced, 2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(res.Labels, truth, 2); p < 0.85 {
		t.Errorf("purity on PAA-reduced data = %v", p)
	}
}

func TestClusterRestartsPicksBetterOptimum(t *testing.T) {
	data, truth := twoShapeClasses(20, 48, 31)
	best, err := ClusterRestarts(data, 2, 5, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The best-of-5 run must be at least as good (by inertia) as every
	// individual restart.
	for r := 0; r < 5; r++ {
		res, err := Cluster(data, 2, Options{Seed: 1 + int64(r)*1_000_003})
		if err != nil {
			t.Fatal(err)
		}
		if best.Inertia > res.Inertia+1e-9 {
			t.Errorf("restart %d has lower inertia %v than the chosen %v", r, res.Inertia, best.Inertia)
		}
	}
	if p := purity(best.Labels, truth, 2); p < 0.9 {
		t.Errorf("purity = %v", p)
	}
	if _, err := ClusterRestarts(nil, 2, 0, Options{}); err == nil {
		t.Error("empty data accepted")
	}
}

func TestClassify1NN(t *testing.T) {
	train, trainLabels := twoShapeClasses(15, 48, 41)
	queries, queryLabels := twoShapeClasses(10, 48, 42)
	for _, measure := range Measures() {
		pred, err := Classify1NN(train, trainLabels, queries, measure, false)
		if err != nil {
			t.Fatalf("%s: %v", measure, err)
		}
		correct := 0
		for i := range pred {
			if pred[i] == queryLabels[i] {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(pred)); acc < 0.8 {
			t.Errorf("%s: accuracy %v on separable classes", measure, acc)
		}
	}
}

func TestClassify1NNErrors(t *testing.T) {
	train, labels := twoShapeClasses(3, 16, 43)
	if _, err := Classify1NN(nil, nil, train, "ED", false); err == nil {
		t.Error("empty train accepted")
	}
	if _, err := Classify1NN(train, labels[:2], train, "ED", false); err == nil {
		t.Error("misaligned labels accepted")
	}
	if _, err := Classify1NN(train, labels, train, "bogus", false); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestClusterOnIterationAndTrace(t *testing.T) {
	data, _ := twoShapeClasses(15, 32, 21)

	calls := 0
	res, err := Cluster(data, 2, Options{
		Seed:         3,
		CollectTrace: true,
		OnIteration:  func(IterationStats) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Iterations {
		t.Errorf("OnIteration fired %d times, want %d (one per iteration)", calls, res.Iterations)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("CollectTrace set but Result.Trace is nil")
	}
	if tr.Method != "k-Shape" {
		t.Errorf("Trace.Method = %q, want k-Shape", tr.Method)
	}
	if len(tr.Iterations) != res.Iterations {
		t.Errorf("trace has %d iterations, result reports %d", len(tr.Iterations), res.Iterations)
	}
	if tr.Converged != res.Converged {
		t.Errorf("Trace.Converged = %v, result %v", tr.Converged, res.Converged)
	}
	if tr.TotalNS <= 0 {
		t.Errorf("Trace.TotalNS = %d, want > 0", tr.TotalNS)
	}
	// The optimized k-Shape loop runs on FFT cross-correlations: the
	// counter delta must show FFT and SBD work.
	if tr.Counters.FFT == 0 || tr.Counters.SBD == 0 {
		t.Errorf("trace counters missing kernel activity: %+v", tr.Counters)
	}
	for i, it := range tr.Iterations {
		if it.Iteration != i+1 {
			t.Errorf("trace iteration %d numbered %d", i, it.Iteration)
		}
	}
}

func TestClusterWithoutTraceLeavesCountersDisabled(t *testing.T) {
	data, _ := twoShapeClasses(10, 32, 5)
	res, err := Cluster(data, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("Result.Trace should be nil without CollectTrace")
	}
}

// TestClusterMaxIterationsUniform verifies that the iteration cap reaches
// every iterative method through the registry dispatch, not just k-Shape.
func TestClusterMaxIterationsUniform(t *testing.T) {
	data, _ := twoShapeClasses(12, 32, 9)
	for _, method := range []string{"k-Shape", "k-AVG+ED", "k-AVG+SBD", "KSC"} {
		calls := 0
		res, err := Cluster(data, 2, Options{
			Seed:          7,
			Method:        method,
			MaxIterations: 1,
			OnIteration:   func(IterationStats) { calls++ },
		})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if res.Iterations != 1 {
			t.Errorf("%s: iterations = %d, want 1", method, res.Iterations)
		}
		if calls != 1 {
			t.Errorf("%s: OnIteration fired %d times, want 1", method, calls)
		}
	}
}

func TestClusterTraceNonIterativeMethod(t *testing.T) {
	data, _ := twoShapeClasses(8, 32, 13)
	res, err := Cluster(data, 2, Options{Seed: 2, Method: "PAM+SBD", CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("CollectTrace set but Result.Trace is nil")
	}
	// PAM has no Lloyd refinement loop, so no per-iteration records — but
	// its SBD medoid evaluations must still show up in the counters.
	if len(tr.Iterations) != 0 {
		t.Errorf("PAM trace has %d iteration records, want 0", len(tr.Iterations))
	}
	if tr.Counters.SBD == 0 {
		t.Errorf("PAM+SBD trace recorded no SBD evaluations: %+v", tr.Counters)
	}
}
